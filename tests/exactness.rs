//! The paper's central guarantee, verified end to end through the public
//! facade: TKIJ returns the **exact** top-k — its score sequence equals an
//! exhaustive oracle's for every query shape, parameterization,
//! granularity, k and data distribution we can afford to enumerate.

use tkij::prelude::*;

/// Runs TKIJ and the oracle and compares score sequences; also validates
/// every returned tuple by re-scoring it against the actual intervals.
fn assert_exact(engine: &Tkij, dataset: &PreparedDataset, query: &Query, k: usize, label: &str) {
    let report = engine.execute(dataset, query, k).expect(label);
    let refs: Vec<&IntervalCollection> =
        query.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
    let expected = naive_topk(query, &refs, k);
    assert_eq!(report.results.len(), expected.len(), "{label}: cardinality");
    for (i, (got, want)) in report.results.iter().zip(&expected).enumerate() {
        assert!(
            (got.score - want.score).abs() < 1e-9,
            "{label}: rank {i}: {} vs {}",
            got.score,
            want.score
        );
        let tuple: Vec<Interval> = got
            .ids
            .iter()
            .zip(&query.vertices)
            .map(|(id, c)| {
                *dataset.collections[c.0 as usize]
                    .intervals()
                    .iter()
                    .find(|iv| iv.id == *id)
                    .unwrap_or_else(|| panic!("{label}: unknown id {id}"))
            })
            .collect();
        assert!(
            (query.score_tuple(&tuple) - got.score).abs() < 1e-9,
            "{label}: rank {i} reports a wrong score"
        );
    }
}

#[test]
fn synthetic_all_table1_queries_and_params() {
    for seed in [1u64, 7] {
        let engine = Tkij::new(TkijConfig::default().with_granules(7).with_reducers(5));
        let dataset = engine.prepare(uniform_collections(3, 45, seed)).unwrap();
        let avg = dataset.collections[0].avg_length();
        for (pname, params) in PredicateParams::table2() {
            for (qname, q) in table1::all(params, avg) {
                assert_exact(&engine, &dataset, &q, 6, &format!("{qname}/{pname}/seed{seed}"));
            }
        }
    }
}

#[test]
fn k_sweep_and_granularity_sweep() {
    let engine_for = |g: u32| Tkij::new(TkijConfig::default().with_granules(g).with_reducers(4));
    let q = table1::q_om(PredicateParams::P2);
    for g in [1u32, 2, 5, 13] {
        let engine = engine_for(g);
        let dataset = engine.prepare(uniform_collections(3, 30, 33)).unwrap();
        for k in [1usize, 2, 5, 29, 100, 40_000] {
            assert_exact(&engine, &dataset, &q, k, &format!("Qom/g{g}/k{k}"));
        }
    }
}

#[test]
fn alternative_aggregations() {
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(3));
    let dataset = engine.prepare(uniform_collections(3, 35, 88)).unwrap();
    let p = PredicateParams::P1;
    let make = |agg: Aggregation| {
        Query::new(
            vec![CollectionId(0), CollectionId(1), CollectionId(2)],
            vec![
                QueryEdge { src: 0, dst: 1, predicate: TemporalPredicate::overlaps(p) },
                QueryEdge { src: 1, dst: 2, predicate: TemporalPredicate::meets(p) },
            ],
            agg,
        )
        .unwrap()
    };
    assert_exact(&engine, &dataset, &make(Aggregation::Min), 8, "min-agg");
    assert_exact(
        &engine,
        &dataset,
        &make(Aggregation::WeightedSum(vec![3.0, 1.0])),
        8,
        "weighted-agg",
    );
}

#[test]
fn traffic_data_self_join() {
    let cfg = TrafficConfig::calibrated(600, 5);
    let (base, _) = traffic_collection(&cfg, 1.0, CollectionId(0));
    // Use a prefix so the oracle stays cheap.
    let small = IntervalCollection::new(
        CollectionId(0),
        base.intervals().iter().take(60).copied().collect(),
    )
    .unwrap();
    let avg = small.avg_length();
    let collections =
        vec![small.clone(), small.copy_as(CollectionId(1)), small.copy_as(CollectionId(2))];
    let engine = Tkij::new(TkijConfig::default().with_granules(10).with_reducers(4));
    let dataset = engine.prepare(collections).unwrap();
    for (qname, q) in [
        ("QjB,jB", table1::q_jbjb(PredicateParams::P3, avg)),
        ("QsM,sM", table1::q_smsm(PredicateParams::P3, avg)),
        ("Qo,o", table1::q_oo(PredicateParams::P3)),
    ] {
        assert_exact(&engine, &dataset, &q, 10, qname);
    }
}

#[test]
fn adversarial_clustered_data() {
    // All intervals inside one granule, plus a far outlier cluster:
    // stresses same-granule buckets (invalid box corners) and pruning.
    let mut intervals = Vec::new();
    for i in 0..40u64 {
        intervals
            .push(Interval::new(i, 1000 + (i as i64 % 7), 1000 + (i as i64 % 11) + 5).unwrap());
    }
    for i in 40..50u64 {
        intervals.push(Interval::new(i, 50_000, 50_040 + i as i64).unwrap());
    }
    let c = IntervalCollection::new(CollectionId(0), intervals).unwrap();
    let collections = vec![c.clone(), c.copy_as(CollectionId(1)), c.copy_as(CollectionId(2))];
    let engine = Tkij::new(TkijConfig::default().with_granules(12).with_reducers(6));
    let dataset = engine.prepare(collections).unwrap();
    for (qname, q) in table1::all(PredicateParams::P1, c.avg_length()) {
        assert_exact(&engine, &dataset, &q, 5, &format!("clustered/{qname}"));
    }
}

#[test]
fn two_way_queries_are_supported() {
    let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
    let dataset = engine.prepare(uniform_collections(2, 80, 4)).unwrap();
    let p = PredicateParams::P1;
    for pred in [
        TemporalPredicate::before(p),
        TemporalPredicate::equals(p),
        TemporalPredicate::contains(p),
        TemporalPredicate::sparks(p, 10),
    ] {
        let q = Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![QueryEdge { src: 0, dst: 1, predicate: pred.clone() }],
            Aggregation::NormalizedSum,
        )
        .unwrap();
        assert_exact(&engine, &dataset, &q, 12, &pred.to_string());
    }
}
