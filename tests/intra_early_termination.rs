//! Early-termination regression tests for the **sharded/parallel** local
//! join: a workload whose sequential rank-join stops early must stop
//! early per chunk too, and a deliberately stale shared bound must never
//! change the returned top-k.
//!
//! (The third guard in this family is a hard assert: `publish_bound` in
//! `tkij_core::localjoin` panics on a non-monotone bound publication,
//! `#[should_panic]`-tested next to it.)

use tkij::prelude::*;

/// A 2-vertex `meets` workload with a dominant score cluster, evaluated
/// through the sharded join (tiny chunks, 2 chunk workers) with static
/// TopBuckets pruning disabled — every combination survives with honest
/// bounds, so any work saving comes from *runtime* early termination.
fn run_sharded_meets(k: usize, shared_bound: bool) -> ExecutionReport {
    let mut config = TkijConfig::default()
        .with_granules(10)
        .with_reducers(2)
        .with_probe_chunk_items(8)
        .without_pruning();
    if !shared_bound {
        config = config.without_intra_bound();
    }
    let engine = Tkij::with_cluster(config, ClusterConfig::default().with_intra_join_threads(2));
    let dataset = engine.prepare(uniform_collections(2, 120, 31)).unwrap();
    let q = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge {
            src: 0,
            dst: 1,
            predicate: TemporalPredicate::meets(PredicateParams::P1),
        }],
        Aggregation::NormalizedSum,
    )
    .unwrap();
    engine.execute(&dataset, &q, k).unwrap()
}

#[test]
fn early_termination_survives_probe_sharding() {
    let report = run_sharded_meets(3, true);
    assert_eq!(report.results.len(), 3);
    let assigned: usize = report.local_stats.iter().map(|s| s.combos_assigned).sum();
    let processed: usize = report.local_stats.iter().map(|s| s.combos_processed).sum();
    assert!(processed > 0);
    assert!(
        processed < assigned,
        "combo-level early termination must fire on the sharded path \
         (processed {processed} of {assigned})"
    );

    // Exhaustive reference: a k no workload of this size can fill, so
    // the admission threshold never rises and nothing is ever skipped.
    let exhaustive = run_sharded_meets(100_000, true);
    assert!(
        report.index_probes() < exhaustive.index_probes(),
        "probes must stay below the exhaustive count: {} vs {}",
        report.index_probes(),
        exhaustive.index_probes()
    );
    assert!(
        report.probe_chunks() < exhaustive.probe_chunks(),
        "dominated chunks must be skipped, not evaluated: {} vs {}",
        report.probe_chunks(),
        exhaustive.probe_chunks()
    );
    assert!(report.items_scanned() < exhaustive.items_scanned());

    // The exhaustive run returns every tuple; the early-terminated run's
    // scores must be its true top prefix.
    for (got, want) in report.results.iter().zip(&exhaustive.results) {
        assert_eq!(got.score.to_bits(), want.score.to_bits());
    }
}

#[test]
fn stale_bound_still_yields_the_exact_topk() {
    // The maximally stale bound: wave chunks never observe a published
    // value at all. Correctness must not depend on bound freshness —
    // the score sequence is bitwise identical — and staleness can only
    // cost work, never save it.
    let fresh = run_sharded_meets(5, true);
    let stale = run_sharded_meets(5, false);
    assert_eq!(fresh.results.len(), stale.results.len());
    for (a, b) in fresh.results.iter().zip(&stale.results) {
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "a stale bound changed the top-k: {a:?} vs {b:?}"
        );
    }
    assert!(
        fresh.items_scanned() <= stale.items_scanned(),
        "the shared bound may only prune: fresh {} vs stale {}",
        fresh.items_scanned(),
        stale.items_scanned()
    );
    assert!(fresh.index_probes() <= stale.index_probes());
}
