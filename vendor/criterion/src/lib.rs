//! Offline stand-in for the subset of [`criterion`](https://docs.rs/criterion)
//! that TKIJ's `micro` bench uses: `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock mean over `sample_size` samples after a
//! short warm-up — no outlier analysis, HTML reports, or statistical tests.
//! Good enough to spot order-of-magnitude regressions offline; swap in real
//! criterion when network access is available.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The stub runs one setup per
/// routine call regardless of variant; the enum exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, warm_up_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        let mean = b.mean();
        println!("{id:<50} {:>14}/iter ({} samples)", fmt_ns(mean), b.samples.len());
        self
    }

    /// Starts a named group; the stub only prefixes benchmark ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: None }
    }
}

/// A group of related benchmarks sharing an id prefix. A group-level
/// `sample_size` applies only within the group, as in real criterion.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(&full, f);
        self.criterion.sample_size = saved;
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; times the hot routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and pick an iteration count so each sample is ≥ ~50 µs.
        let warm_start = Instant::now();
        let mut iters_per_sample: u64 = 1;
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            calls += 1;
            if calls >= 100_000 {
                break;
            }
        }
        let elapsed = warm_start.elapsed();
        if calls > 0 {
            let per_call = elapsed.as_nanos() / calls as u128;
            iters_per_sample = (50_000 / per_call.max(1)).max(1) as u64;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call so lazy initialisation is off the clock.
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len() as u32
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors criterion's `criterion_group!`, both the configured and the
/// plain form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(5).warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke/add", |b| b.iter(|| 1u64 + 1));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![3u8, 1, 2], |mut v| v.sort(), BatchSize::SmallInput)
        });
    }
}
