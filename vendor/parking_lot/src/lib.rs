//! Offline stand-in for the subset of [`parking_lot`](https://docs.rs/parking_lot)
//! that TKIJ uses: `Mutex` and `RwLock` with infallible, non-poisoning lock
//! APIs. Backed by `std::sync` primitives; poisoning is ignored — a lock
//! poisoned by a panicking holder still hands out its guard (via
//! `into_inner` on the poison error), matching real `parking_lot`'s
//! no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
