//! Offline stand-in for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! that TKIJ uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` helpers `gen`, `gen_range`, `gen_bool`.
//!
//! The build environment has no network access, so this crate stands in for
//! crates.io. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across runs and platforms, which is all the workload
//! generators and property tests require. The streams do **not** match the
//! real `StdRng` (ChaCha12); nothing in the workspace depends on specific
//! draws, only on seed-reproducibility.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator, reduced to the `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of the `Standard` distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `Standard` distribution: what `rng.gen::<T>()` draws from.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every value is fair game.
                    return Standard::sample(rng);
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform draw from `[0, span)` (`span == 0` means the full `u64` domain)
/// via Lemire's widening-multiply rejection method — unbiased.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Reject the biased low slice: threshold is 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same seed → same stream, forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
