//! Offline stand-in for the one `crossbeam` entry point TKIJ uses:
//! [`thread::scope`]. Implemented over `std::thread::scope` (stable since
//! Rust 1.63), with crossbeam's closure signature — spawned closures receive
//! a `&Scope` so they can spawn further scoped threads.
//!
//! Divergence from real crossbeam: a panicking child makes the scope itself
//! panic on join (std semantics) rather than surfacing as `Err`, so the
//! returned `Result` is always `Ok`. Callers that `.expect()` the result —
//! the only pattern in this workspace — behave identically.

pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, as in
        /// crossbeam, so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed data may be shared with
    /// spawned threads; all threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let s: u64 = chunk.iter().sum();
                    total.fetch_add(s, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("scope");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
