//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! that TKIJ's property tests use: the `proptest!` macro over named
//! `arg in strategy` inputs, integer/float range strategies, tuple
//! strategies, `collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking and no failure persistence —
//! a failing case panics with the generated inputs in the assertion message
//! (every strategy here is driven by a fixed seed, so failures reproduce by
//! re-running the test). Case count defaults to 256, overridable with
//! `PROPTEST_CASES`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one `arg in strategy` binding.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.below(span as u128) as i128)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + (rng.below(span as u128) as i128)) as $t
                }
            }
        )*};
    }
    impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Length specification for [`crate::collection::vec`]; the dedicated
    /// type (rather than a generic `Strategy<Value = usize>`) lets integer
    /// literals in `vec(.., 0..50)` infer as `usize`, as in real proptest.
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// `collection::vec(element, size)` strategy.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo + 1) as u128;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind `proptest::bool::ANY`.
    #[derive(Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 source driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span` must be positive and fit
        /// the strategies' `i128` arithmetic.
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0);
            // 64 random bits suffice: every range strategy in this
            // workspace spans far less than 2^64.
            (self.next_u64() as u128) % span
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-block configuration, reduced to the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: case_count() }
        }
    }

    /// Number of cases per property, from `PROPTEST_CASES` or 256.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirrors proptest's `proptest!` block: any number of `#[test]` functions
/// whose arguments are `name in strategy` bindings, optionally headed by
/// `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$attr])*
        fn $name() {
            let cases = ($config).cases;
            for case in 0..cases {
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cases = $crate::test_runner::case_count();
            for case in 0..cases {
                // Per-test, per-case seed: stable across runs, distinct
                // across properties in the same module.
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Mirrors `prop_assert!` — panics with the message; no shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// FNV-1a over the test path, mixed with the case index.
#[doc(hidden)]
pub fn seed_for(path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The macro wires strategies, bindings, and assertions together.
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, w in 1i64..30, u in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..30).contains(&w));
            prop_assert!((0.0..1.0).contains(&u));
        }

        #[test]
        fn vec_and_tuple_strategies(
            ivs in crate::collection::vec((0i64..100, 0i64..100), 0..50),
        ) {
            prop_assert!(ivs.len() < 50);
            for (a, b) in &ivs {
                prop_assert!((0..100).contains(a));
                prop_assert!((0..100).contains(b));
            }
        }
    }

    #[test]
    fn seeds_differ_across_cases_and_tests() {
        assert_ne!(super::seed_for("a::b", 0), super::seed_for("a::b", 1));
        assert_ne!(super::seed_for("a::b", 0), super::seed_for("a::c", 0));
    }
}
