//! # tkij — Distributed Evaluation of Top-k Temporal Joins
//!
//! A complete Rust implementation of **TKIJ** (Pilourdault, Leroy,
//! Amer-Yahia: *Distributed Evaluation of Top-k Temporal Joins*,
//! SIGMOD 2016): exact top-k evaluation of n-ary **Ranked Temporal Join
//! (RTJ)** queries — joins over interval collections whose predicates are
//! graded (fuzzy) versions of Allen-algebra relations — on an in-process
//! Map-Reduce substrate.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`temporal`] | intervals, scored predicates, queries, granules, bucket statistics |
//! | [`solver`] | branch-and-bound score bounds for bucket combinations |
//! | [`mapreduce`] | the Map-Reduce engine with shuffle accounting |
//! | [`index`] | R-tree / sweep / grid access paths with score-threshold windows |
//! | [`datagen`] | synthetic and simulated network-traffic workloads |
//! | [`core`](mod@core) | the TKIJ engine itself (statistics, TopBuckets, DTB, joins) |
//! | [`baselines`] | the Boolean competitors RCCIS and All-Matrix |
//!
//! ## Quickstart
//!
//! ```
//! use tkij::prelude::*;
//!
//! // Three collections of 200 uniform intervals (the paper's generator).
//! let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
//! let dataset = engine.prepare(uniform_collections(3, 200, 7)).unwrap();
//!
//! // Q{o,m}: x1 overlaps x2, x2 meets x3 — scored, top-10.
//! let query = table1::q_om(PredicateParams::P1);
//! let report = engine.execute(&dataset, &query, 10).unwrap();
//!
//! assert_eq!(report.results.len(), 10);
//! assert!(report.results.windows(2).all(|w| w[0].score >= w[1].score));
//! ```
//!
//! ## Serving: prepare once, query many
//!
//! For long-lived deployments, freeze the engine + dataset into a
//! [`TkijServer`](crate::prelude::TkijServer) and query it from any
//! number of threads — results and work counters are bit-identical to
//! solo runs, and repeated query shapes reuse a cached plan:
//!
//! ```
//! use std::sync::Arc;
//! use tkij::prelude::*;
//!
//! let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
//! let dataset = engine.prepare(uniform_collections(3, 150, 7)).unwrap();
//! let server = Arc::new(engine.serve(dataset));
//!
//! let queries = [table1::q_om(PredicateParams::P1), table1::q_oo(PredicateParams::P1)];
//! std::thread::scope(|scope| {
//!     for query in &queries {
//!         let handle = server.handle();
//!         scope.spawn(move || {
//!             let report = handle.query(query, 5).unwrap();
//!             assert_eq!(report.results.len(), 5);
//!         });
//!     }
//! });
//! assert_eq!(server.stats().queries, 2);
//! ```
//!
//! See `ARCHITECTURE.md` for the phase pipeline, the prepare/query
//! split, and where each determinism guarantee is enforced.

#![warn(missing_docs)]

pub use tkij_baselines as baselines;
pub use tkij_core as core;
pub use tkij_datagen as datagen;
pub use tkij_index as index;
pub use tkij_mapreduce as mapreduce;
pub use tkij_solver as solver;
pub use tkij_temporal as temporal;

// Compile-check every Rust block in the README as a doctest, so the
// examples there (quickstart, serving layer, backends) cannot rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

/// The common imports for building and running RTJ queries.
pub mod prelude {
    pub use tkij_core::{
        collect_statistics, naive_boolean, naive_topk, select_backend, BucketProfile,
        DistributionPolicy, ExecutionReport, IntraJoin, LatencySnapshot, LocalJoinBackend, PlanKey,
        PreparedDataset, QueryHandle, QueryPlan, ServingStats, Strategy, SweepScanKind, Tkij,
        TkijConfig, TkijServer,
    };
    pub use tkij_datagen::{traffic_collection, uniform_collections, TrafficConfig};
    pub use tkij_mapreduce::ClusterConfig;
    pub use tkij_temporal::{
        query::table1, Aggregation, CollectionId, Interval, IntervalCollection, MatchTuple,
        PredicateKind, PredicateParams, Query, QueryEdge, TemporalPredicate, Timestamp,
    };
}
